/// Reproduces paper Table VI — "Effects of CWM": global load transactions,
/// gld_throughput and achieved occupancy as the coarsening factor varies,
/// on the M=65K/nnz=650K uniform random matrix at N=512 (GTX 1080Ti).
///
/// Paper reference values:
///   w/o CWM:     GLT 2.18e8, 479.54 GB/s, occ 0.78
///   CWM (CF=2):  GLT 1.93e8, 567.82 GB/s, occ 0.78   <- best
///   CWM (CF=4):  GLT 1.80e8, 479.23 GB/s, occ 0.75
///   CWM (CF=8):  GLT 1.74e8, 395.22 GB/s, occ 0.75
/// Note the CF=2 throughput exceeding the 484 GB/s DRAM peak — L2 supplies
/// part of the traffic; the same effect appears in the reproduction.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "kernels/registry.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(table6_cwm_effects) {
  const auto& opt = ctx.opt;
  const auto dev = gpusim::gtx1080ti();
  const auto matrix = sparse::profile_matrix_65k();

  bench::banner("Table VI: effects of CWM (device " + dev.name +
                ", M=65K nnz=650K, N=512)");
  Table table({"method", "GLT(x32B)", "gld_throughput(GB/s)", "Occ", "time(ms)"});

  struct Row {
    const char* label;
    kernels::SpmmAlgo algo;
  };
  const Row rows[] = {{"w/o CWM", kernels::SpmmAlgo::Crc},
                      {"CWM (CF=2)", kernels::SpmmAlgo::CrcCwm2},
                      {"CWM (CF=4)", kernels::SpmmAlgo::CrcCwm4},
                      {"CWM (CF=8)", kernels::SpmmAlgo::CrcCwm8}};

  kernels::SpmmRunOptions ro;
  ro.device = dev;
  ro.sample = gpusim::SamplePolicy::sampled(opt.sample_blocks * 4);
  kernels::SpmmProblem p(matrix, 512);
  double crc_time = 0.0;
  for (const auto& r : rows) {
    const auto res = kernels::run_spmm(r.algo, p, ro);
    if (r.algo == kernels::SpmmAlgo::Crc) crc_time = res.time_ms();
    ctx.record(dev.name, "M=65K nnz=650K", kernels::algo_name(r.algo), 512,
               res.time_ms(),
               r.algo == kernels::SpmmAlgo::Crc ? 0.0 : crc_time / res.time_ms());
    char glt[64];
    std::snprintf(glt, sizeof(glt), "%.2fe+8",
                  static_cast<double>(res.metrics.gld_transactions) / 1e8);
    table.add_row({r.label, glt, Table::fmt(res.gld_throughput_gbps()),
                   Table::fmt(res.achieved_occupancy), Table::fmt(res.time_ms(), 4)});
  }
  table.print();
  std::printf(
      "\npaper: GLT decreases with CF; throughput peaks at CF=2 (above DRAM peak)\n"
      "and declines at CF>=4 as occupancy/register pressure bite. Same shape here.\n");
}
