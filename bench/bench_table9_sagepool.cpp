/// Reproduces paper Table IX — GraphSAGE-pool CUDA-time reduction on DGL
/// (Pubmed): per-setting speedup of the SpMM-like aggregation op alone
/// (GE-SpMM-like over DGL's fallback kernel) and of the whole training
/// run.
///
/// Paper reference: SpMM-like op speedups 2.39x-6.15x (1080Ti) and
/// 3.03x-3.51x (2080); total CUDA-time reductions 1.09x-1.14x.

#include <cstdio>

#include "bench_common/registry.hpp"
#include "gnn/train.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

GESPMM_BENCH(table9_sagepool) {
  const auto& opt = ctx.opt;
  const int kEpochs = opt.quick ? 1 : 2;
  const auto data = opt.quick ? sparse::cora() : sparse::pubmed();
  const std::vector<int> layer_grid = opt.quick ? std::vector<int>{1}
                                                : std::vector<int>{1, 2};
  const std::vector<int> feat_grid =
      opt.quick ? std::vector<int>{16} : std::vector<int>{16, 64, 256};

  for (const auto& dev : opt.devices) {
    bench::banner("Table IX: GraphSAGE-pool CUDA-time reduction on DGL (" + data.name +
                  ", " + dev.name + ")");
    Table table({"(layers, feats)", "SpMM-like speedup", "total speedup"});
    for (int layers : layer_grid) {
      for (int feats : feat_grid) {
        gnn::TrainConfig cfg;
        cfg.device = dev;
        cfg.model.kind = gnn::ModelKind::SagePool;
        cfg.model.num_layers = layers;
        cfg.model.hidden_feats = feats;
        cfg.epochs = kEpochs;
        // Quick mode also narrows the input features (cora's native 1433
        // input columns dominate the first layer's simulation cost).
        if (opt.quick) cfg.model.in_feats = 32;
        // Baseline: DGL — csrmm2 for the (nonexistent here) SpMM parts,
        // fallback kernel for the max-pooling SpMM-like.
        cfg.model.backend = gnn::AggregatorBackend::DglCusparse;
        cfg.model.spmm_like_backend = gnn::AggregatorBackend::DglFallback;
        const auto base = gnn::train(data, cfg);
        // GE-SpMM swapped in for the SpMM-like op only (as in the paper).
        cfg.model.spmm_like_backend = gnn::AggregatorBackend::GeSpMM;
        const auto ours = gnn::train(data, cfg);
        char label[32];
        std::snprintf(label, sizeof(label), "(%d, %d)", layers, feats);
        ctx.record(dev.name, data.name + " " + label, "sagepool_gespmm", feats,
                   ours.cuda_time_ms, base.spmm_like_ms / ours.spmm_like_ms);
        table.add_row({label, Table::fmt(base.spmm_like_ms / ours.spmm_like_ms, 2),
                       Table::fmt(base.cuda_time_ms / ours.cuda_time_ms, 2)});
      }
    }
    table.print();
  }
  std::printf(
      "\npaper: SpMM-like op alone accelerates 2.39x-6.15x; the whole training\n"
      "run improves ~1.1x because pooling is one op among many.\n");
}
