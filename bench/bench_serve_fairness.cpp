/// Extension bench: cross-graph fairness of the v2 serving scheduler.
///
/// Workload: the largest citation graph is *hot* — it floods the queue
/// with a 96-request burst before any other traffic — while the two
/// remaining graphs trickle 16 requests each behind it (width 16
/// throughout). The v1 FIFO policy serves the entire hot backlog first,
/// so every cold request's completion stamp sits at the end of the
/// schedule; deficit round-robin (quantum 256 columns) interleaves one
/// full-width hot batch per rotation with the cold queues, pulling cold
/// completions forward without changing batch composition.
///
/// Reported per device: total modelled device time and throughput per
/// policy (fairness must be ~free in aggregate) and the cold graphs'
/// p50/p95 modelled completion stamps (the latency win). Engines run one
/// worker, paused until fully enqueued, so batch composition — and
/// therefore every recorded number — is deterministic.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common/registry.hpp"
#include "serve/engine.hpp"
#include "sparse/datasets.hpp"

using namespace gespmm;
using bench::Table;

namespace {

constexpr int kHotRequests = 96;
constexpr int kColdRequestsPerGraph = 16;
constexpr sparse::index_t kRequestN = 16;

serve::ServeOptions fairness_opts(const gpusim::DeviceSpec& device,
                                  serve::SchedulePolicy policy,
                                  std::uint64_t sample_blocks) {
  serve::ServeOptions sopt;
  sopt.devices = {device};
  sopt.num_workers = 1;
  sopt.start_paused = true;
  sopt.batch.max_batch_requests = 16;
  sopt.batch.max_batch_n = 256;
  sopt.scheduler.policy = policy;
  sopt.scheduler.quantum = 256;
  sopt.plan.sample_blocks = sample_blocks;
  return sopt;
}

double percentile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const std::size_t idx =
      std::min(xs.size() - 1,
               static_cast<std::size_t>(q * static_cast<double>(xs.size())));
  return xs[idx];
}

struct PolicyRun {
  serve::EngineStats stats;
  std::vector<double> hot_completions;
  std::vector<double> cold_completions;
};

/// Hot burst first, then the cold trickle; drain and collect completion
/// stamps (the dispatched device's cumulative modelled ms per request).
PolicyRun run_workload(const gpusim::DeviceSpec& device,
                       serve::SchedulePolicy policy,
                       const std::vector<sparse::GraphDataset>& graphs,
                       std::size_t hot_index, std::uint64_t sample_blocks) {
  serve::Engine eng(fairness_opts(device, policy, sample_blocks));
  std::vector<serve::GraphId> ids;
  ids.reserve(graphs.size());
  for (const auto& g : graphs) ids.push_back(eng.register_graph(g.adj));

  std::vector<serve::Ticket> hot, cold;
  for (int r = 0; r < kHotRequests; ++r) {
    kernels::DenseMatrix b(graphs[hot_index].adj.cols, kRequestN);
    kernels::fill_random(b, 5200 + static_cast<std::uint64_t>(r));
    hot.push_back(eng.submit(ids[hot_index], std::move(b)));
  }
  for (int r = 0; r < kColdRequestsPerGraph; ++r) {
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      if (gi == hot_index) continue;
      kernels::DenseMatrix b(graphs[gi].adj.cols, kRequestN);
      kernels::fill_random(b, 5600 + 10 * static_cast<std::uint64_t>(gi) +
                                  static_cast<std::uint64_t>(r));
      cold.push_back(eng.submit(ids[gi], std::move(b)));
    }
  }
  eng.shutdown();

  PolicyRun run;
  for (const auto& t : hot) run.hot_completions.push_back(t.wait().completed_at_ms);
  for (const auto& t : cold) run.cold_completions.push_back(t.wait().completed_at_ms);
  run.stats = eng.stats();
  return run;
}

double throughput_rps(const serve::EngineStats& st) {
  return st.modelled_ms > 0.0 ? static_cast<double>(st.completed) /
                                    (st.modelled_ms * 1e-3)
                              : 0.0;
}

}  // namespace

GESPMM_BENCH(serve_fairness) {
  const auto& opt = ctx.opt;
  const auto graphs = sparse::citation_suite();
  std::size_t hot_index = 0;
  for (std::size_t gi = 1; gi < graphs.size(); ++gi) {
    if (graphs[gi].adj.nnz() > graphs[hot_index].adj.nnz()) hot_index = gi;
  }
  const int cold_total =
      kColdRequestsPerGraph * (static_cast<int>(graphs.size()) - 1);

  for (const auto& dev : opt.devices) {
    bench::banner("Serving fairness: FIFO vs DRR (device " + dev.name +
                  ", hot " + graphs[hot_index].name + " x" +
                  std::to_string(kHotRequests) + " burst + " +
                  std::to_string(cold_total) + " cold, N=" +
                  std::to_string(kRequestN) + ")");

    const PolicyRun fifo = run_workload(dev, serve::SchedulePolicy::Fifo, graphs,
                                        hot_index, opt.sample_blocks);
    const PolicyRun drr = run_workload(dev, serve::SchedulePolicy::DeficitRoundRobin,
                                       graphs, hot_index, opt.sample_blocks);

    Table table({"policy", "batches", "modelled_ms", "req/s", "cold p50", "cold p95",
                 "hot p95"});
    for (const auto* run : {&fifo, &drr}) {
      const bool is_fifo = run == &fifo;
      table.add_row({is_fifo ? "fifo" : "drr",
                     std::to_string(run->stats.batches),
                     Table::fmt(run->stats.modelled_ms, 3),
                     Table::fmt(throughput_rps(run->stats), 0),
                     Table::fmt(percentile(run->cold_completions, 0.50), 3),
                     Table::fmt(percentile(run->cold_completions, 0.95), 3),
                     Table::fmt(percentile(run->hot_completions, 0.95), 3)});
    }
    table.print();

    const double fifo_p95 = percentile(fifo.cold_completions, 0.95);
    const double drr_p95 = percentile(drr.cold_completions, 0.95);
    std::printf("cold p95: %.3f -> %.3f modelled ms (%.2fx); aggregate %.3f -> "
                "%.3f ms (%.2f%% drift)\n",
                fifo_p95, drr_p95, drr_p95 > 0.0 ? fifo_p95 / drr_p95 : 0.0,
                fifo.stats.modelled_ms, drr.stats.modelled_ms,
                fifo.stats.modelled_ms > 0.0
                    ? 100.0 * (drr.stats.modelled_ms - fifo.stats.modelled_ms) /
                          fifo.stats.modelled_ms
                    : 0.0);

    ctx.record(dev.name, "hot+cold-burst", "fifo", kRequestN,
               fifo.stats.modelled_ms);
    ctx.record(dev.name, "hot+cold-burst", "drr", kRequestN,
               drr.stats.modelled_ms,
               drr.stats.modelled_ms > 0.0
                   ? fifo.stats.modelled_ms / drr.stats.modelled_ms
                   : 0.0);
    ctx.record(dev.name, "hot+cold-burst", "fifo cold-p95", kRequestN, fifo_p95);
    ctx.record(dev.name, "hot+cold-burst", "drr cold-p95", kRequestN, drr_p95,
               drr_p95 > 0.0 ? fifo_p95 / drr_p95 : 0.0);
  }
}
