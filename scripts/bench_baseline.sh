#!/usr/bin/env bash
# Record the committed benchmark baseline: build the bench_all driver and
# run the full registered bench suite on both simulated devices at the
# default protocol (snap-scale 0.25, sample budget 1024), writing
# BENCH_baseline.json at the repo root. Modelled times are deterministic,
# so the file only changes when the code's performance behavior changes —
# commit the refreshed file together with the change that moved it.
#
# Extra bench flags pass through, e.g.:
#   scripts/bench_baseline.sh --full          # paper-scale suite (slow)
#   scripts/bench_baseline.sh --quick         # tiny CI-scale baseline
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_all

"$BUILD_DIR"/bench/bench_all --device=both "$@" --json=BENCH_baseline.json \
  | tee "$BUILD_DIR"/bench_baseline.log

echo "wrote BENCH_baseline.json (log: $BUILD_DIR/bench_baseline.log)"
