#!/usr/bin/env python3
"""Fail on broken intra-repo links in the project's markdown files.

Scans every tracked *.md file (git ls-files when available, else a
filesystem walk skipping build trees) for inline markdown links and
images. For each relative target it checks that the referenced file or
directory exists, resolving the path against the markdown file's own
directory; `#anchor` suffixes are stripped, and pure in-page anchors,
absolute URLs and mailto links are ignored.

Exit status: 0 clean, 1 broken link(s), 2 usage/IO error.
"""

import os
import re
import subprocess
import sys

# Inline links/images: [text](target) / ![alt](target). Reference-style
# definitions are rare in this repo; inline covers the committed docs.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", ".ccache"}


def markdown_files(root):
    try:
        out = subprocess.run(
            ["git", "ls-files", "--cached", "--others", "--exclude-standard",
             "*.md", "**/*.md"],
            cwd=root, capture_output=True, text=True, check=True)
        files = [f for f in out.stdout.splitlines() if f.endswith(".md")]
        if files:
            return sorted(set(files))
    except (OSError, subprocess.CalledProcessError):
        pass
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                found.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(found)


def check_file(root, md_rel):
    md_abs = os.path.join(root, md_rel)
    try:
        with open(md_abs, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        print(f"check_docs_links: cannot read {md_rel}: {e}", file=sys.stderr)
        sys.exit(2)

    broken = []
    links = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            links += 1
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(md_abs), path))
            if not os.path.exists(resolved):
                broken.append((lineno, target))
    return broken, links


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = markdown_files(root)
    if not files:
        print("check_docs_links: no markdown files found", file=sys.stderr)
        return 2

    total_links = 0
    failures = []
    for md in files:
        broken, links = check_file(root, md)
        total_links += links
        for lineno, target in broken:
            failures.append(f"{md}:{lineno}: broken link -> {target}")

    print(f"check_docs_links: {len(files)} markdown files, "
          f"{total_links} links checked")
    if failures:
        print(f"\nFAIL ({len(failures)} broken link(s)):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
