#!/usr/bin/env python3
"""Offline trainer for the learned plan selector (core/plan_select).

Fits a small greedy decision tree (CART over a regret criterion) on the
training CSV that bench_plan_select dumps when GESPMM_PLAN_SELECT_DUMP is
set, then emits the node table src/core/plan_select.cpp bakes in.

Pipeline (from the repo root, after a build):
    GESPMM_PLAN_SELECT_DUMP=/tmp/plan_select_train.csv \
        build/bench/bench_plan_select
    python3 scripts/train_plan_select.py /tmp/plan_select_train.csv \
        --out src/core/plan_select_table.inc

The tree predicts the kernel whose modelled time minimizes total regret
(sum over cases of time(assigned) / time(sweep best)). Splits stop when
they no longer improve regret, so on the current cost model — where the
exact sweep agrees with the paper's fixed rule everywhere — the fitted
tree *is* the fixed rule, learned rather than assumed. The trainer earns
its keep when the kernel zoo or the cost model grows.

Stdlib only; no sklearn, no third-party deps.
"""

import argparse
import sys

# Feature order must match FeatureId in src/core/plan_select.cpp.
FEATURES = [
    ("n", "kFeatN"),
    ("mean_row_nnz", "kFeatMeanRowNnz"),
    ("row_nnz_cv", "kFeatRowNnzCv"),
    ("density", "kFeatDensity"),
    ("unified_l1", "kFeatUnifiedL1"),
    ("dense_row_frac", "kFeatDenseRowFrac"),
    ("dense_nnz_frac", "kFeatDenseNnzFrac"),
    ("rows", "kFeatRows"),
]

# CSV time column -> emitted enum constant. A 0.0 time means the kernel
# was not a candidate for that case (n <= 32 admits only Crc; hybrid
# requires at least one dense row).
ALGOS = [
    ("t_crc", "SpmmAlgo::Crc"),
    ("t_cwm2", "SpmmAlgo::CrcCwm2"),
    ("t_cwm4", "SpmmAlgo::CrcCwm4"),
    ("t_cwm8", "SpmmAlgo::CrcCwm8"),
    ("t_hybrid", "SpmmAlgo::HybridMma"),
]

INVALID = float("inf")

# Regret charged when a leaf predicts a kernel that is not a candidate for
# a case (the C++ side clamps such predictions to the fixed rule, which
# costs regret 1.0 there). The extra penalty makes the trainer prefer
# trees that predict real candidates directly over leaning on the clamp —
# without it, a single-leaf tree ties the width split and wins on size.
INVALID_PENALTY = 0.01


def load_rows(path):
    rows = []
    header = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            cols = line.split(",")
            if cols[0] == "device":  # header (append mode repeats it per run)
                header = cols
                continue
            if header is None:
                raise SystemExit(f"{path}: data before header")
            rec = dict(zip(header, cols))
            feats = [float(rec[name]) for name, _ in FEATURES]
            times = []
            for col, _ in ALGOS:
                t = float(rec[col])
                times.append(t if t > 0.0 else INVALID)
            rows.append((feats, times, min(times)))
    if not rows:
        raise SystemExit(f"{path}: no training rows")
    return rows


def leaf_cost(rows):
    """(best_algo_index, total_regret) for predicting one kernel on rows."""
    best_algo, best_cost = 0, INVALID
    for ai in range(len(ALGOS)):
        cost = 0.0
        for _, times, t_best in rows:
            t = times[ai]
            if t == INVALID:
                cost += 1.0 + INVALID_PENALTY
            else:
                cost += t / t_best
        if cost < best_cost:
            best_algo, best_cost = ai, cost
    return best_algo, best_cost


def best_split(rows):
    """(feature_index, threshold, cost_left+cost_right) or None."""
    best = None
    for fi in range(len(FEATURES)):
        values = sorted({feats[fi] for feats, _, _ in rows})
        for lo, hi in zip(values, values[1:]):
            thr = (lo + hi) / 2.0
            left = [r for r in rows if r[0][fi] <= thr]
            right = [r for r in rows if r[0][fi] > thr]
            if not left or not right:
                continue
            cost = leaf_cost(left)[1] + leaf_cost(right)[1]
            if best is None or cost < best[2]:
                best = (fi, thr, cost)
    return best


def build_tree(rows, depth, max_depth, min_gain):
    """Returns nested dict: {'algo': ai} or {'fi', 'thr', 'left', 'right'}."""
    algo, cost = leaf_cost(rows)
    if depth >= max_depth:
        return {"algo": algo}
    split = best_split(rows)
    if split is None or cost - split[2] < min_gain:
        return {"algo": algo}
    fi, thr, _ = split
    left_rows = [r for r in rows if r[0][fi] <= thr]
    right_rows = [r for r in rows if r[0][fi] > thr]
    return {
        "fi": fi,
        "thr": thr,
        "left": build_tree(left_rows, depth + 1, max_depth, min_gain),
        "right": build_tree(right_rows, depth + 1, max_depth, min_gain),
    }


def flatten(tree):
    """Preorder node list; children always after their parent (the C++
    walker relies on that to bound its step count)."""
    nodes = []

    def emit(t):
        idx = len(nodes)
        nodes.append(None)  # reserve
        if "algo" in t:
            nodes[idx] = ("-1", 0, 0, ALGOS[t["algo"]][1], 0.0)
        else:
            left = emit(t["left"])
            right = emit(t["right"])
            nodes[idx] = (FEATURES[t["fi"]][1], left, right, "SpmmAlgo::Crc",
                          t["thr"])
        return idx

    emit(tree)
    return nodes


def predict(tree, feats):
    while "algo" not in tree:
        tree = tree["left"] if feats[tree["fi"]] <= tree["thr"] else tree["right"]
    return tree["algo"]


def training_regret(tree, rows):
    total, worst, mispredicts = 0.0, 1.0, 0
    for feats, times, t_best in rows:
        t = times[predict(tree, feats)]
        if t == INVALID:
            t = t_best  # clamped to the fixed rule by the C++ side
        r = t / t_best
        total += r
        worst = max(worst, r)
        if r > 1.0:
            mispredicts += 1
    return total / len(rows), worst, mispredicts


def render(nodes, source):
    lines = [
        "// Generated by scripts/train_plan_select.py — do not edit by hand.",
        "// Regenerate with:",
        "//   GESPMM_PLAN_SELECT_DUMP=/tmp/plan_select_train.csv build/bench/bench_plan_select",
        "//   python3 scripts/train_plan_select.py /tmp/plan_select_train.csv --out src/core/plan_select_table.inc",
        f"// Trained on {source}.",
        "// Fields per node: {feature, left, right, algo, threshold}; feature -1 is",
        "// a leaf (see PlanSelectNode in plan_select.cpp).",
        "inline constexpr PlanSelectNode kPlanSelectTree[] = {",
    ]
    for feat, left, right, algo, thr in nodes:
        lines.append(f"    {{{feat}, {left}, {right}, {algo}, {thr:.1f}}},")
    lines.append("};")
    return "\n".join(lines) + "\n"


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("csv", help="training dump from bench_plan_select")
    ap.add_argument("--out", help="write the node table here (default stdout)")
    ap.add_argument("--max-depth", type=int, default=4)
    ap.add_argument("--min-gain", type=float, default=1e-9,
                    help="minimum regret improvement to keep a split")
    args = ap.parse_args(argv)

    rows = load_rows(args.csv)
    tree = build_tree(rows, 0, args.max_depth, args.min_gain)
    mean_r, max_r, mis = training_regret(tree, rows)
    nodes = flatten(tree)
    table = render(nodes, f"{len(rows)} cases from {args.csv}")

    if args.out:
        with open(args.out, "w") as f:
            f.write(table)
        print(f"wrote {args.out}: {len(nodes)} nodes", file=sys.stderr)
    else:
        sys.stdout.write(table)
    print(f"training regret: mean {mean_r:.4f}, max {max_r:.4f}, "
          f"mispredicts {mis}/{len(rows)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
