#!/usr/bin/env bash
# Full CI pipeline: configure -> build -j -> ctest. Mirrors the tier-1
# verify command; usable locally and from .github/workflows/ci.yml.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

# SANITIZE=1 flips the build to ASan+UBSan (see GESPMM_SANITIZE in the
# top-level CMakeLists); pair it with a separate BUILD_DIR so the
# instrumented and plain object files never mix. CTEST_LABEL narrows the
# test run to one ctest label (e.g. serve, stress) for sharded jobs.
EXTRA_CMAKE_ARGS=()
if [[ "${SANITIZE:-0}" == "1" ]]; then
  EXTRA_CMAKE_ARGS+=(-DGESPMM_SANITIZE=ON)
fi
CTEST_ARGS=()
if [[ -n "${CTEST_LABEL:-}" ]]; then
  CTEST_ARGS+=(-L "$CTEST_LABEL")
fi

cmake -B "$BUILD_DIR" -S . "${EXTRA_CMAKE_ARGS[@]}" "$@"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --no-tests=error --output-on-failure -j "$JOBS" \
  "${CTEST_ARGS[@]}"

# Documentation gate: intra-repo markdown links must resolve. On by
# default for local runs; the workflow's build jobs set RUN_DOCS_GATE=0
# because its dedicated docs-check job already runs the checker once.
if [[ "${RUN_DOCS_GATE:-1}" == "1" ]]; then
  python3 ./scripts/check_docs_links.py
fi

# Opt-in: the workflow's dedicated format job calls check_format.sh
# directly; running it unconditionally here would duplicate that gate in
# the build jobs on runners that ship clang-format.
if [[ "${RUN_FORMAT_GATE:-0}" == "1" ]]; then
  ./scripts/check_format.sh
fi
