#!/usr/bin/env python3
"""Compare a fresh bench_all JSON report against the committed baseline.

Two layers of checking:

1. Structure / coverage (always hard-fail):
   - schema_version must match,
   - every (bench, device) rollup group present in the baseline must be
     present in the fresh run (a bench disappearing is a harness bug),
   - fresh groups absent from the baseline are reported (fail by default,
     since the baseline should be refreshed in the same PR; --allow-new
     downgrades this to a note).

2. Timing / speedup drift on per-(bench, device) geomeans:
   - strict mode fails when |fresh/baseline - 1| exceeds the tolerance,
   - advisory mode (--timing=advisory) prints drift but never fails —
     use this while runners are unproven, or when the two runs used
     different protocols (different scale/budget options), in which case
     timing comparison is meaningless and is downgraded automatically,
   - wallclock groups (host wall time, e.g. micro_kernels) are always
     advisory: modelled times are deterministic, wall time is not.

Exit status: 0 clean, 1 regression/coverage failure, 2 usage/IO error.
"""

import argparse
import json
import math
import sys

# Per-bench relative tolerance on geomean drift, overriding --tolerance.
# Simulated times are deterministic, so these guard against *code* changes
# that shift modelled performance, not against measurement noise; benches
# whose geomean covers very few records get a little more room.
PER_BENCH_TOLERANCE = {
    "ablation_model": 0.10,  # 4 records/device over one matrix
    "sampled_batches": 0.10,  # 8 sampled batches
}

HARD_KEYS = ("snap_scale", "max_graphs", "sample_blocks", "quick")

# Benches the committed baseline must always cover (hard-fail when absent):
# the baseline is the proof these subsystems were measured. A required
# bench missing from it means the baseline predates the subsystem — it
# must be re-recorded with scripts/bench_baseline.sh in the same PR.
REQUIRED_BENCHES = ("serve_shard", "plan_select", "serve_dynamic",
                    "spmm_hybrid")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(f"bench_compare: {path} is not valid JSON: {e}", file=sys.stderr)
        sys.exit(2)


def rollup_map(report):
    out = {}
    for r in report.get("rollups", []):
        out[(r["bench"], r["device"])] = r
    return out


def fmt_key(key):
    return f"{key[0]} [{key[1]}]"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="JSON report from the run under test")
    ap.add_argument("--baseline", default="BENCH_baseline.json",
                    help="committed baseline report (default: %(default)s)")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="default relative geomean tolerance (default: %(default)s)")
    ap.add_argument("--timing", choices=("strict", "advisory"), default="strict",
                    help="whether timing drift fails the run (default: %(default)s)")
    ap.add_argument("--allow-new", action="store_true",
                    help="do not fail on (bench, device) groups missing from "
                         "the baseline")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    notes = []

    if base.get("schema_version") != fresh.get("schema_version"):
        failures.append(
            f"schema_version mismatch: baseline {base.get('schema_version')} "
            f"vs fresh {fresh.get('schema_version')}")

    timing_mode = args.timing
    base_opts = base.get("options", {})
    fresh_opts = fresh.get("options", {})
    if any(base_opts.get(k) != fresh_opts.get(k) for k in HARD_KEYS):
        if timing_mode == "strict":
            notes.append(
                "protocols differ "
                f"(baseline {base_opts} vs fresh {fresh_opts}): "
                "timing comparison downgraded to advisory")
        timing_mode = "advisory"

    base_groups = rollup_map(base)
    fresh_groups = rollup_map(fresh)

    for bench in REQUIRED_BENCHES:
        if not any(key[0] == bench for key in base_groups):
            failures.append(
                f"required: baseline has no '{bench}' rollup — re-record it "
                "with scripts/bench_baseline.sh")

    missing = sorted(set(base_groups) - set(fresh_groups))
    for key in missing:
        failures.append(f"coverage: {fmt_key(key)} present in baseline but "
                        "missing from the fresh run")
    new = sorted(set(fresh_groups) - set(base_groups))
    for key in new:
        msg = (f"coverage: {fmt_key(key)} not in the baseline — refresh it "
               "with scripts/bench_baseline.sh")
        (notes if args.allow_new else failures).append(msg)

    drift_rows = []
    for key in sorted(set(base_groups) & set(fresh_groups)):
        b, f = base_groups[key], fresh_groups[key]
        wall = b.get("wallclock") or f.get("wallclock")
        tol = PER_BENCH_TOLERANCE.get(key[0], args.tolerance)
        for field, label in (("geomean_time_ms", "time"),
                             ("geomean_speedup", "speedup")):
            bv, fv = b.get(field, 0.0), f.get(field, 0.0)
            if bv <= 0.0 and fv <= 0.0:
                continue
            if bv <= 0.0 or fv <= 0.0:
                failures.append(f"{fmt_key(key)}: {label} geomean "
                                f"{bv:.6g} -> {fv:.6g} (one side empty)")
                continue
            drift = fv / bv - 1.0
            status = "ok"
            if abs(drift) > tol:
                # A faster time / higher speedup is an improvement: report
                # it (the baseline should be refreshed) but only a
                # *regression* fails strict mode.
                regressed = (drift > 0) if field == "geomean_time_ms" else (drift < 0)
                if wall or timing_mode == "advisory":
                    status = "drift (advisory)"
                elif regressed:
                    status = "REGRESSION"
                    failures.append(
                        f"{fmt_key(key)}: {label} geomean regressed "
                        f"{bv:.6g} -> {fv:.6g} ({drift:+.1%}, tol {tol:.0%})")
                else:
                    status = "improved"
                    notes.append(
                        f"{fmt_key(key)}: {label} geomean improved "
                        f"{bv:.6g} -> {fv:.6g} ({drift:+.1%}) — consider "
                        "refreshing the baseline")
            if not math.isclose(fv, bv, rel_tol=1e-12):
                drift_rows.append((key, label, bv, fv, drift, status))

    print(f"bench_compare: baseline={args.baseline} fresh={args.fresh} "
          f"timing={timing_mode} default tolerance={args.tolerance:.0%}")
    print(f"  groups: {len(base_groups)} baseline, {len(fresh_groups)} fresh, "
          f"{len(missing)} missing, {len(new)} new")
    if drift_rows:
        print("  drift:")
        for key, label, bv, fv, drift, status in drift_rows:
            print(f"    {fmt_key(key):45s} {label:8s} "
                  f"{bv:12.6g} -> {fv:12.6g}  {drift:+8.2%}  {status}")
    else:
        print("  drift: none (all common geomeans identical)")

    for n in notes:
        print(f"  note: {n}")
    if failures:
        print(f"\nFAIL ({len(failures)} problem(s)):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
