#!/usr/bin/env bash
# clang-format gate over src/ tests/ bench/ examples/. Fails (exit 1) when
# any file needs reformatting; prints the offending files and a fix command.
# Skips with a warning when clang-format is not installed so minimal CI
# images can still run the build+test half of the pipeline.
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [[ -z "$CLANG_FORMAT" ]]; then
  for candidate in clang-format clang-format-19 clang-format-18 \
                   clang-format-17 clang-format-16 clang-format-15 \
                   clang-format-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CLANG_FORMAT="$candidate"
      break
    fi
  done
fi

if [[ -z "$CLANG_FORMAT" ]]; then
  echo "check_format: clang-format not found; skipping format gate" >&2
  exit 0
fi

mapfile -t files < <(find src tests bench examples \
  \( -name '*.cpp' -o -name '*.hpp' \) | sort)

bad=()
for f in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$f" >/dev/null 2>&1; then
    bad+=("$f")
  fi
done

if ((${#bad[@]})); then
  printf 'check_format: %d file(s) need reformatting:\n' "${#bad[@]}" >&2
  printf '  %s\n' "${bad[@]}" >&2
  printf 'fix with: %s -i %s\n' "$CLANG_FORMAT" "${bad[*]}" >&2
  exit 1
fi

echo "check_format: ${#files[@]} files clean"
